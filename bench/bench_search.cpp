// Section 4 complexity results: search-space sizes (contraction paths and
// loop orders, with and without the CSF-order restriction), DP subproblem
// counts, and DP-vs-enumeration wall time. Demonstrates the
// O(N^3 2^m m) vs O((m!)^N) gap the paper's Algorithm 1 delivers.
#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/order_dp.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

int main(int argc, char** argv) {
  Cli cli("bench_search");
  const auto* n = cli.add_int("n", 64, "sparse mode size for the stats");
  const auto* rank = cli.add_int("rank", 8, "dense rank");
  const auto* seed = cli.add_int("seed", 19, "generator seed");
  cli.parse(argc, argv);

  struct Case {
    std::string name;
    std::string expr;
    int order;
  };
  const std::vector<Case> cases = {
      {"MTTKRP-3", mttkrp3_expr(), 3},
      {"TTMc-3", ttmc3_expr(), 3},
      {"TTTP-3", tttp3_expr(), 3},
      {"all-mode TTMc-3", allmode_ttmc3_expr(), 3},
      {"MTTKRP-4", mttkrp4_expr(), 4},
      {"TTMc-4", ttmc4_expr(), 4},
  };

  Table table("Section 4 — search-space sizes and Algorithm 1 cost");
  table.set_header({"kernel", "paths", "exec paths", "orders(best path)",
                    "orders(CSF)", "DP subprobs", "DP evals", "DP[ms]",
                    "enum[ms]", "agree"});

  for (const auto& c : cases) {
    Rng rng(static_cast<std::uint64_t>(*seed));
    std::vector<std::int64_t> dims(static_cast<std::size_t>(c.order), *n);
    CooTensor t = random_coo(dims, *n * *n / 2, rng);
    std::vector<std::pair<std::string, std::int64_t>> dense_dims;
    for (const char* idx : {"r", "s", "t", "u", "a"}) {
      dense_dims.emplace_back(idx, *rank);
    }
    auto p = make_problem(c.expr, std::move(t), dense_dims, rng);
    const Kernel& kernel = p->kernel();

    int total = 0;
    const auto exec_paths = executable_paths(kernel, p->bound.stats, &total);
    const ContractionPath& best = exec_paths.front();
    const double orders_free = count_orders(kernel, best, false);
    const double orders_csf = count_orders(kernel, best, true);

    const BoundedBufferBlasCost cost(2, 1, &p->bound.stats, true);
    Timer dp_timer;
    const DpResult dp = optimal_order(kernel, best, cost);
    const double dp_ms = dp_timer.millis();

    // Enumerate the same space (CSF-restricted), capped to keep the bench
    // bounded; "agree" checks the DP matched the enumerated minimum when
    // the full space was visited.
    EnumerateOptions eopts;
    eopts.limit = 2000000;
    Timer enum_timer;
    const EnumerationSearchResult brute =
        search_orders(kernel, best, cost, eopts);
    const double enum_ms = enum_timer.millis();
    const bool complete =
        static_cast<double>(brute.visited) >= orders_csf;
    std::string agree = "capped";
    if (complete) {
      agree = (dp.feasible == brute.feasible &&
               (!dp.feasible || dp.best_cost == brute.best_cost))
                  ? "yes"
                  : "NO";
    }

    table.add_row({c.name, std::to_string(total),
                   std::to_string(exec_paths.size()),
                   human_count(orders_free), human_count(orders_csf),
                   std::to_string(dp.subproblems),
                   std::to_string(dp.evaluations), strfmt("%.2f", dp_ms),
                   strfmt("%.2f", enum_ms), agree});
  }
  table.add_note("upper bound on paths: n!(n-1)!/2^(n-1) (Section 4.1.1); "
                 "orders per path: prod |I_i|! (/k_i! with CSF order)");
  table.add_note("DP: O(N^2 2^m) subproblems, O(Nm) work each "
                 "(Section 4.2)");
  table.print(std::cout);
  return 0;
}
