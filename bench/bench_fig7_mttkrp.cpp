// Figure 7: single-thread MTTKRP (R = 64) across the paper's tensors,
// comparing SpTTN-Cyclops against TACO (unfactorized), SparseLNR
// (partially fused), CTF (pairwise with materialized intermediates) and
// SPLATT (hand-tuned CSF MTTKRP).
//
// Tensors are the FROSTT/DARPA stand-ins of tensor/generate.cpp at a
// laptop-friendly scale (see DESIGN.md substitution table); --scale raises
// fidelity toward the published sizes.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

int main(int argc, char** argv) {
  Cli cli("bench_fig7_mttkrp");
  const auto* rank = cli.add_int("rank", 64, "factor rank R (paper: 64)");
  const auto* scale =
      cli.add_double("scale", 0.002, "tensor scale vs published size");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions (median)");
  const auto* seed = cli.add_int("seed", 1, "generator seed");
  cli.parse(argc, argv);

  Table table("Figure 7 — single-thread MTTKRP, R=" + std::to_string(*rank));
  table.set_header({"tensor", "order", "nnz", "SpTTN[s]", "TACO[s]",
                    "SparseLNR[s]", "CTF[s]", "SPLATT[s]", "vs TACO",
                    "vs SpLNR", "vs CTF", "vs SPLATT"});

  const std::vector<std::string> tensors = {"nell-2", "nips", "enron",
                                            "vast-3d", "darpa"};
  for (const auto& name : tensors) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^ hash_mix(name.size()));
    CooTensor t = make_preset_tensor(name, *scale, rng);
    const int order = t.order();
    const std::string expr = order == 3 ? mttkrp3_expr() : mttkrp4_expr();
    std::vector<std::pair<std::string, std::int64_t>> dims{{"r", *rank}};
    auto p = make_problem(expr, std::move(t), dims, rng);

    const RunResult ours = run_spttn(*p, static_cast<int>(*reps));
    const RunResult taco = run_taco_unfactorized(*p, static_cast<int>(*reps));
    const RunResult lnr = run_sparselnr(*p, static_cast<int>(*reps));
    const RunResult ctf = run_ctf_pairwise(*p, 1);
    const RunResult splatt = run_splatt(*p, static_cast<int>(*reps));

    table.add_row({name, std::to_string(order),
                   human_count(static_cast<double>(p->sparse.nnz())),
                   ours.cell(), taco.cell(), lnr.cell(), ctf.cell(),
                   splatt.cell(), speedup_cell(taco, ours),
                   speedup_cell(lnr, ours), speedup_cell(ctf, ours),
                   speedup_cell(splatt, ours)});
  }
  table.add_note("paper: SpTTN-Cyclops 1.3-3.4x over TACO; 0.7-1.7x vs "
                 "SPLATT; CTF orders of magnitude slower");
  table.add_note(strfmt("tensors scaled to %.3g of published nnz; shapes "
                        "(who wins) are the reproduction target",
                        *scale));
  table.print(std::cout);
  return 0;
}
