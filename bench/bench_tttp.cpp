// Section 7 TTTP results: SpTTN-Cyclops vs CTF-style pairwise contraction
// (paper: over 340x single-node speedup) and vs the unfactorized schedule
// (TTTP is one of the kernels where unfactorized is near-optimal, so the
// gap there should be small).
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

int main(int argc, char** argv) {
  Cli cli("bench_tttp");
  const auto* rank = cli.add_int("rank", 32, "CP rank R (paper: 32)");
  const auto* n = cli.add_int("n", 256, "mode size");
  const auto* sparsity = cli.add_double("sparsity", 0.001, "nnz fraction");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions");
  const auto* seed = cli.add_int("seed", 13, "generator seed");
  cli.parse(argc, argv);

  Table table(strfmt("Section 7 — TTTP (SDDMM generalization), R=%lld",
                     static_cast<long long>(*rank)));
  table.set_header({"tensor", "nnz", "SpTTN[s]", "TACO[s]", "CTF[s]",
                    "vs TACO", "vs CTF", "peak CTF entries"});

  const auto run_one = [&](const std::string& label, CooTensor t) {
    Rng rng(static_cast<std::uint64_t>(*seed));
    auto p = make_problem(tttp3_expr(), std::move(t), {{"r", *rank}}, rng);
    const RunResult ours = run_spttn(*p, static_cast<int>(*reps));
    const RunResult taco = run_taco_unfactorized(*p, static_cast<int>(*reps));
    // Run pairwise once, also capturing its intermediate growth.
    RunResult ctf;
    PairwiseStats st;
    try {
      const ContractionPath path =
          pairwise_best_path(p->kernel(), p->bound.stats);
      Output o = Output::make(*p);
      Timer timer;
      st = pairwise_execute(p->kernel(), path, p->sparse, p->bound.dense,
                            nullptr, o.sparse_vals,
                            /*max_entries=*/1ll << 25);
      ctf.seconds = timer.seconds();
      ctf.ok = true;
    } catch (const Error&) {
      ctf.note = "OOM";
    }
    table.add_row({label, human_count(static_cast<double>(p->sparse.nnz())),
                   ours.cell(), taco.cell(), ctf.cell(),
                   speedup_cell(taco, ours), speedup_cell(ctf, ours),
                   human_count(static_cast<double>(
                       st.peak_intermediate_entries))});
  };

  Rng gen(static_cast<std::uint64_t>(*seed));
  const auto nnz = static_cast<std::int64_t>(
      static_cast<double>(*n) * static_cast<double>(*n) *
      static_cast<double>(*n) * *sparsity);
  run_one(strfmt("uniform N=%lld", static_cast<long long>(*n)),
          random_coo({*n, *n, *n}, nnz, gen));
  run_one("nell-2 (scaled)", make_preset_tensor("nell-2", 0.002, gen));
  run_one("vast-3d (scaled)", make_preset_tensor("vast-3d", 0.002, gen));

  table.add_note("paper: over 340x vs CTF on a single node; the pairwise "
                 "path materializes nnz x R intermediates");
  table.print(std::cout);
  return 0;
}
