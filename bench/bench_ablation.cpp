// Ablations over the design choices DESIGN.md calls out:
//  (a) inner-kernel offload (BLAS hooks) on vs off,
//  (b) sparse-aware vs dense-dims cache model inside the planner,
//  (c) CSF-order restriction on vs off (search-space and plan quality),
//  (d) cost-model choice (buffer-size vs cache vs the paper's bounded-
//      buffer/BLAS metric).
#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/order_dp.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

double run_order(const Problem& p, const ContractionPath& path,
                 const LoopOrder& order, bool collapse, int reps) {
  FusedExecutor exec(p.kernel(), path, order, collapse);
  Output o = Output::make(p);
  ExecArgs args;
  args.sparse = &p.bound.csf;
  args.dense = p.bound.dense;
  args.out_dense = o.sparse_vals.empty() ? &o.dense : nullptr;
  args.out_sparse = o.sparse_vals;
  return time_median([&] { exec.execute(args); }, reps);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_ablation");
  const auto* rank = cli.add_int("rank", 32, "dense rank");
  const auto* scale = cli.add_double("scale", 0.002, "tensor scale");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions");
  const auto* seed = cli.add_int("seed", 23, "generator seed");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));

  // (a) offload on/off across kernels, on a nell-2-like tensor.
  {
    Table table("Ablation (a) — inner dense-kernel offload");
    table.set_header({"kernel", "offload on[s]", "offload off[s]", "benefit"});
    const std::vector<std::pair<std::string, std::string>> kernels = {
        {"MTTKRP-3", mttkrp3_expr()},
        {"TTMc-3", ttmc3_expr()},
        {"TTTP-3", tttp3_expr()},
    };
    for (const auto& [name, expr] : kernels) {
      CooTensor t = make_preset_tensor("nell-2", *scale, rng);
      auto p = make_problem(expr, std::move(t),
                            {{"r", *rank}, {"s", *rank}}, rng);
      const Plan plan = plan_kernel(p->bound);
      const double on =
          run_order(*p, plan.path, plan.order, true, static_cast<int>(*reps));
      const double off =
          run_order(*p, plan.path, plan.order, false, static_cast<int>(*reps));
      RunResult ron;
      ron.ok = true;
      ron.seconds = on;
      RunResult roff;
      roff.ok = true;
      roff.seconds = off;
      table.add_row({name, ron.cell(), roff.cell(), speedup_cell(roff, ron)});
    }
    table.print(std::cout);
  }

  // (b) sparse-aware vs dense cache model in the planner.
  {
    Table table("Ablation (b) — sparse-aware vs dense-dims cache model");
    table.set_header({"kernel", "sparse-aware[s]", "dense-dims[s]",
                      "same plan?"});
    for (const auto& [name, expr] :
         std::vector<std::pair<std::string, std::string>>{
             {"TTMc-3", ttmc3_expr()},
             {"all-mode TTMc-3", allmode_ttmc3_expr()}}) {
      CooTensor t = make_preset_tensor("nell-2", *scale, rng);
      auto p = make_problem(expr, std::move(t),
                            {{"r", *rank}, {"s", *rank}, {"u", *rank}}, rng);
      PlannerOptions aware;
      aware.sparse_aware_cache = true;
      PlannerOptions dense;
      dense.sparse_aware_cache = false;
      Plan plan_a;
      Plan plan_d;
      const RunResult ra = run_spttn(*p, static_cast<int>(*reps), aware,
                                     &plan_a);
      const RunResult rd = run_spttn(*p, static_cast<int>(*reps), dense,
                                     &plan_d);
      table.add_row({name, ra.cell(), rd.cell(),
                     plan_a.order == plan_d.order ? "yes" : "no"});
    }
    table.print(std::cout);
  }

  // (c) CSF-order restriction: search effort and plan quality.
  {
    Table table("Ablation (c) — CSF-order restriction in the DP");
    table.set_header({"kernel", "restricted evals", "free evals",
                      "restricted[s]", "free[s]"});
    for (const auto& [name, expr] :
         std::vector<std::pair<std::string, std::string>>{
             {"MTTKRP-3", mttkrp3_expr()}, {"TTMc-3", ttmc3_expr()}}) {
      CooTensor t = make_preset_tensor("nell-2", *scale, rng);
      auto p = make_problem(expr, std::move(t),
                            {{"r", *rank}, {"s", *rank}}, rng);
      const auto paths = executable_paths(p->kernel(), p->bound.stats);
      const BoundedBufferBlasCost cost(2, 1, &p->bound.stats, true);
      DpOptions restricted;
      restricted.restrict_csf_order = true;
      DpOptions free_opts;
      free_opts.restrict_csf_order = false;
      const DpResult r = optimal_order(p->kernel(), paths[0], cost,
                                       restricted);
      const DpResult f = optimal_order(p->kernel(), paths[0], cost,
                                       free_opts);
      const double tr = run_order(*p, paths[0], r.best, true,
                                  static_cast<int>(*reps));
      // The free-search order may violate the CSF iteration constraint of
      // the sparse term; only run it when buildable.
      std::string tf = "n/a";
      try {
        tf = strfmt("%.4f", run_order(*p, paths[0], f.best, true,
                                      static_cast<int>(*reps)));
      } catch (const Error&) {
      }
      table.add_row({name, std::to_string(r.evaluations),
                     std::to_string(f.evaluations), strfmt("%.4f", tr), tf});
    }
    table.print(std::cout);
  }

  // (d) cost-model choice.
  {
    Table table("Ablation (d) — planner cost model");
    table.set_header({"kernel", "bounded-blas[s]", "buffer-size[s]",
                      "cache-miss[s]"});
    for (const auto& [name, expr] :
         std::vector<std::pair<std::string, std::string>>{
             {"MTTKRP-3", mttkrp3_expr()},
             {"TTMc-3", ttmc3_expr()},
             {"all-mode TTMc-3", allmode_ttmc3_expr()}}) {
      CooTensor t = make_preset_tensor("nell-2", *scale, rng);
      auto p = make_problem(expr, std::move(t),
                            {{"r", *rank}, {"s", *rank}, {"u", *rank}}, rng);
      std::vector<std::string> row{name};
      for (CostKind kind : {CostKind::kBoundedBufferBlas,
                            CostKind::kMaxBufferSize, CostKind::kCacheMiss}) {
        PlannerOptions opts;
        opts.cost = kind;
        const RunResult r = run_spttn(*p, static_cast<int>(*reps), opts);
        row.push_back(r.cell());
      }
      table.add_row(row);
    }
    table.add_note("the bounded-buffer+BLAS metric is the paper's "
                   "experiment configuration (Section 5)");
    table.print(std::cout);
  }
  return 0;
}
