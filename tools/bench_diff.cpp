// bench_diff: compare a freshly produced bench JSON against a checked-in
// BENCH_*.json baseline — the "diff bench results across PRs" tool.
//
// Two gates, both reflected in the exit code:
//  - schema: the fresh file must parse, carry the same "bench" id, and
//    keep its bench-specific legacy fields: bench_fig8_scaling rows
//    (ranks/grid/max_local_s/comm_s/total_s/speedup/imbalance),
//    bench_search rows (search-space columns plus the exact-vs-anytime
//    comparison rows with cost_ratio/gap/plan seconds), and bench_serve
//    rows (per-kernel request counts and latency percentiles). Schema
//    extensions stay backward-compatible and silent field drops fail CI.
//  - regression: matching rows (identity = the string/rank-like fields on
//    the path to the metric) whose seconds-valued metrics got slower than
//    baseline * --max-regress (and by more than --min-delta absolute) are
//    regressions. Only seconds-like fields ("*_s", "*seconds*", p50/p99/
//    max latencies) are thresholded; counts/bytes/speedups are identity
//    and informational.
//
// Baselines may predate a schema change: rows missing the "backend" field
// are treated as backend=modeled, and comparison runs over the identity
// intersection (a smoke run with fewer ranks than the checked-in sweep
// compares only the shared rows — the tool requires the intersection to be
// non-empty so a renamed key cannot silently compare nothing).
//
//   tools/bench_diff --new smoke_fig8.json --baseline BENCH_fig8.json
//       [--max-regress 2.0] [--min-delta 1e-4] [--schema-only]
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using spttn::Error;
using spttn::strfmt;

// ----------------------------------------------------- minimal JSON value

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> items;
  // Insertion-ordered object members (bench writers emit stable order).
  std::vector<std::pair<std::string, Json>> members;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw Error("JSON parse error at line " + std::to_string(line) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.str = string();
        return v;
      }
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return Json{};
      default: return number();
    }
  }

  static Json make_bool(bool b) {
    Json v;
    v.kind = Json::Kind::kBool;
    v.b = b;
    return v;
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* c = lit; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *c) {
        fail(std::string("bad literal, expected ") + lit);
      }
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          // Bench identities are ASCII; keep non-ASCII escapes opaque.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          pos_ += 4;
          out.push_back('?');
          break;
        default: fail("unknown escape");
      }
    }
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.kind = Json::Kind::kNumber;
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number '" + text_.substr(start, pos_ - start) + "'");
    }
    return v;
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = string();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

Json parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return JsonParser(ss.str()).parse();
}

// ------------------------------------------------------------- flattening

/// Fields that identify a row rather than measure it. "backend" defaults
/// to "modeled" when absent so pre-backend baselines compare against the
/// modeled rows of the extended schema.
bool is_identity_field(const std::string& key, const Json& v) {
  if (v.kind == Json::Kind::kString) return true;
  return key == "ranks" || key == "threads" || key == "clients" ||
         key == "reps" || key == "nnz";
}

/// Seconds-valued metrics get the regression threshold; everything else is
/// informational.
bool is_seconds_metric(const std::string& key) {
  if (key.size() > 2 && key.compare(key.size() - 2, 2, "_s") == 0) {
    return true;
  }
  return key.find("seconds") != std::string::npos ||
         key.find("latency") != std::string::npos || key == "p50" ||
         key == "p99" || key == "max" || key == "secs";
}

/// identity -> (metric name -> value). Identity is the ordered
/// concatenation of identity fields along the path from the root.
using Metrics = std::map<std::string, std::map<std::string, double>>;

void flatten(const Json& v, const std::string& identity, Metrics* out) {
  if (v.kind == Json::Kind::kArray) {
    for (const Json& item : v.items) flatten(item, identity, out);
    return;
  }
  if (v.kind != Json::Kind::kObject) return;
  std::string id = identity;
  bool saw_backend = false;
  bool saw_row_id = false;
  for (const auto& [key, member] : v.members) {
    if (!is_identity_field(key, member)) continue;
    saw_row_id = true;
    if (key == "backend") saw_backend = true;
    id += "/" + key + "=" +
          (member.kind == Json::Kind::kString
               ? member.str
               : strfmt("%lld", static_cast<long long>(member.num)));
  }
  // Pre-backend fig8 baselines: figure-level objects carried no backend
  // field, so pin their rows to the modeled transport.
  if (!saw_backend && saw_row_id && v.find("figure") != nullptr) {
    id += "/backend=modeled";
  }
  for (const auto& [key, member] : v.members) {
    if (member.kind == Json::Kind::kNumber &&
        !is_identity_field(key, member)) {
      (*out)[id][key] = member.num;
    }
    if (member.kind == Json::Kind::kArray ||
        member.kind == Json::Kind::kObject) {
      flatten(member, id, out);
    }
  }
}

// ----------------------------------------------------------- schema gate

void check_fig8_schema(const Json& doc, const std::string& path) {
  const Json* figures = doc.find("figures");
  if (figures == nullptr || figures->kind != Json::Kind::kArray) {
    throw Error(path + ": bench_fig8_scaling document has no figures array");
  }
  const char* legacy[] = {"ranks",   "max_local_s", "comm_s",
                          "total_s", "speedup",     "imbalance"};
  for (const Json& fig : figures->items) {
    if (fig.find("figure") == nullptr || fig.find("kernel") == nullptr) {
      throw Error(path + ": figure entry missing figure/kernel id");
    }
    const Json* rows = fig.find("rows");
    if (rows == nullptr || rows->kind != Json::Kind::kArray) {
      throw Error(path + ": figure entry has no rows array");
    }
    for (const Json& row : rows->items) {
      for (const char* field : legacy) {
        if (row.find(field) == nullptr) {
          throw Error(path + ": row dropped legacy field '" + field +
                      "' — schema must stay backward-compatible");
        }
      }
    }
  }
}

void check_search_schema(const Json& doc, const std::string& path) {
  const Json* mode = doc.find("mode");
  if (mode == nullptr || mode->kind != Json::Kind::kString) {
    throw Error(path + ": bench_search document has no mode field");
  }
  if (mode->str == "cache") {
    const Json* families = doc.find("families");
    if (families == nullptr || families->kind != Json::Kind::kArray) {
      throw Error(path + ": bench_search cache document has no families");
    }
    return;
  }
  const Json* kernels = doc.find("kernels");
  if (kernels == nullptr || kernels->kind != Json::Kind::kArray ||
      kernels->items.empty()) {
    throw Error(path + ": bench_search document has no kernels rows");
  }
  const char* legacy[] = {"paths", "exec_paths",     "orders_csf",
                          "dp_ms", "dp_subproblems", "enum_ms"};
  for (const Json& row : kernels->items) {
    for (const char* field : legacy) {
      if (row.find(field) == nullptr) {
        throw Error(path + ": kernels row dropped legacy field '" +
                    std::string(field) + "'");
      }
    }
  }
  // Strategy-comparison rows: every row must carry the full exact-vs-
  // anytime column set so the quality signal (cost_ratio, gap) cannot be
  // silently dropped while the timing columns keep the diff green.
  const Json* anytime = doc.find("anytime");
  if (anytime == nullptr || anytime->kind != Json::Kind::kArray ||
      anytime->items.empty()) {
    throw Error(path + ": bench_search document has no anytime rows");
  }
  const char* strategy_fields[] = {"cost_ratio", "nodes_expanded", "gap",
                                   "exact_plan_s", "anytime_plan_s"};
  for (const Json& row : anytime->items) {
    if (row.find("kernel") == nullptr || row.find("budget") == nullptr) {
      throw Error(path + ": anytime row missing kernel/budget identity");
    }
    for (const char* field : strategy_fields) {
      if (row.find(field) == nullptr) {
        throw Error(path + ": anytime row dropped field '" +
                    std::string(field) + "'");
      }
    }
  }
}

void check_serve_schema(const Json& doc, const std::string& path) {
  if (doc.find("throughput_rps") == nullptr) {
    throw Error(path + ": bench_serve document has no throughput_rps");
  }
  const Json* kernels = doc.find("kernels");
  if (kernels == nullptr || kernels->kind != Json::Kind::kArray ||
      kernels->items.empty()) {
    throw Error(path + ": bench_serve document has no kernels rows");
  }
  const char* legacy[] = {"requests", "p50_us", "p99_us", "max_us"};
  for (const Json& row : kernels->items) {
    if (row.find("kernel") == nullptr) {
      throw Error(path + ": serve row missing kernel identity");
    }
    for (const char* field : legacy) {
      if (row.find(field) == nullptr) {
        throw Error(path + ": serve row dropped legacy field '" +
                    std::string(field) + "'");
      }
    }
  }
}

std::string bench_id(const Json& doc, const std::string& path) {
  const Json* bench = doc.find("bench");
  if (bench == nullptr || bench->kind != Json::Kind::kString) {
    throw Error(path + ": top-level \"bench\" id missing");
  }
  return bench->str;
}

}  // namespace

int main(int argc, char** argv) {
  spttn::Cli cli("bench_diff");
  const std::string* fresh_path =
      cli.add_string("new", "", "freshly produced bench JSON");
  const std::string* base_path =
      cli.add_string("baseline", "", "checked-in BENCH_*.json to diff against");
  const auto* max_regress = cli.add_double(
      "max-regress", 2.0,
      "fail when a seconds metric exceeds baseline * this factor");
  const auto* min_delta = cli.add_double(
      "min-delta", 1e-4,
      "ignore regressions smaller than this many absolute seconds");
  const auto* schema_only = cli.add_bool(
      "schema-only", false, "validate schema + row matching, skip thresholds");

  try {
    cli.parse(argc, argv);
    if (fresh_path->empty() || base_path->empty()) {
      std::cerr << cli.usage();
      return 2;
    }
    const Json fresh = parse_file(*fresh_path);
    const Json base = parse_file(*base_path);

    const std::string id = bench_id(fresh, *fresh_path);
    const std::string base_id = bench_id(base, *base_path);
    if (id != base_id) {
      throw Error("bench id mismatch: new is '" + id + "', baseline is '" +
                  base_id + "'");
    }
    if (id == "bench_fig8_scaling") {
      check_fig8_schema(fresh, *fresh_path);
      check_fig8_schema(base, *base_path);
    } else if (id == "bench_search") {
      check_search_schema(fresh, *fresh_path);
      check_search_schema(base, *base_path);
    } else if (id == "bench_serve") {
      check_serve_schema(fresh, *fresh_path);
      check_serve_schema(base, *base_path);
    }

    Metrics fresh_rows;
    Metrics base_rows;
    flatten(fresh, "", &fresh_rows);
    flatten(base, "", &base_rows);

    int compared = 0;
    int regressions = 0;
    for (const auto& [row_id, base_metrics] : base_rows) {
      const auto it = fresh_rows.find(row_id);
      if (it == fresh_rows.end()) continue;  // smoke subset of the sweep
      for (const auto& [metric, base_val] : base_metrics) {
        const auto mit = it->second.find(metric);
        if (mit == it->second.end()) continue;
        ++compared;
        if (*schema_only || !is_seconds_metric(metric)) continue;
        const double fresh_val = mit->second;
        if (fresh_val > base_val * *max_regress &&
            fresh_val - base_val > *min_delta) {
          ++regressions;
          std::cout << strfmt("REGRESSION %s %s: %.6f -> %.6f (%.2fx > "
                              "%.2fx budget)\n",
                              row_id.c_str(), metric.c_str(), base_val,
                              fresh_val, fresh_val / base_val,
                              *max_regress);
        }
      }
    }
    if (compared == 0) {
      throw Error("no comparable metrics between " + *fresh_path + " and " +
                  *base_path + " — row identities diverged");
    }
    std::cout << "bench_diff: " << id << ": " << compared
              << " metrics compared, " << regressions << " regression(s)"
              << (*schema_only ? " (schema-only)" : "") << "\n";
    return regressions == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
