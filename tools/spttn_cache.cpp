// spttn_cache: inspect and prewarm on-disk plan cache directories
// (KernelCache::save_dir / load_dir artifacts).
//
//   spttn_cache --dir=plans --prewarm   # plan the paper suite, save it
//   spttn_cache --dir=plans             # list the artifacts in the dir
//   spttn_cache --dir=plans --check     # also re-verify every artifact
//
// Prewarm plans every paper-suite kernel (deterministic tensors from
// --seed, the same generator the tests and benches use) through a
// KernelCache and persists the resident set, so a serving process pointed
// at the directory starts with zero planner searches. Inspect prints one
// line per artifact: kernel, extents, sparsity fingerprint, cost, and the
// estimated resident bytes the byte budget would charge for it.
//
// Exit code: 0 when every artifact processed cleanly, 1 otherwise.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/kernel_suite.hpp"
#include "analysis/plan_verifier.hpp"
#include "core/plan_io.hpp"
#include "serve/kernel_cache.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

namespace fs = std::filesystem;
using spttn::KernelCache;

int prewarm(const std::string& dir, const std::string& filter,
            std::uint64_t seed) {
  KernelCache cache;
  int planned = 0;
  for (const spttn::SuiteKernel& sk : spttn::paper_kernel_suite()) {
    if (!filter.empty() && sk.name.find(filter) == std::string::npos) {
      continue;
    }
    const auto inst = spttn::make_suite_instance(sk, seed);
    const auto entry = cache.get_or_plan(inst->bound);
    ++planned;
    std::printf("planned  %-12s cost=%.3g flops=%.3g bytes=%zu\n",
                sk.name.c_str(), entry->plan.cost.primary, entry->plan.flops,
                entry->bytes);
  }
  const auto report = cache.save_dir(dir);
  std::printf("saved %d artifact(s) to %s (%d rejected)\n", report.processed,
              dir.c_str(), report.rejected);
  for (const std::string& e : report.errors) {
    std::fprintf(stderr, "  %s\n", e.c_str());
  }
  return planned > 0 && report.rejected == 0 ? 0 : 1;
}

int inspect(const std::string& dir, bool check) {
  std::error_code ec;
  std::vector<fs::path> files;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".plan") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "spttn_cache: cannot read '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  int bad = 0;
  std::size_t total_bytes = 0;
  for (const fs::path& path : files) {
    try {
      std::ifstream is(path, std::ios::binary);
      SPTTN_CHECK_MSG(is.good(), "cannot open '" << path.string() << "'");
      std::ostringstream buf;
      buf << is.rdbuf();
      const spttn::LoadedPlan loaded = spttn::deserialize_plan(buf.str());

      spttn::KernelSignature sig;
      sig.expr = loaded.kernel.to_string();
      std::string extents;
      for (int id = 0; id < loaded.kernel.num_indices(); ++id) {
        const std::int64_t d = loaded.kernel.index_dim(id);
        sig.extents.push_back(d);
        if (!extents.empty()) extents += "x";
        extents += std::to_string(d);
      }
      const std::size_t bytes =
          spttn::estimate_entry_bytes(sig, loaded.kernel, loaded.plan);
      total_bytes += bytes;

      std::string status = "ok";
      if (check) {
        const auto report =
            spttn::verify_external_plan(loaded.kernel, loaded.plan);
        if (!report.ok()) {
          status = "VERIFY-FAIL";
          ++bad;
          std::fprintf(stderr, "%s:\n%s\n", path.filename().string().c_str(),
                       report.to_string().c_str());
        }
      }
      std::printf(
          "%-28s %-11s %s  extents=%s fingerprint=%016llx cost=%.3g "
          "bytes=%zu\n",
          path.filename().string().c_str(), status.c_str(), sig.expr.c_str(),
          extents.c_str(),
          static_cast<unsigned long long>(loaded.plan.sparsity_fingerprint),
          loaded.plan.cost.primary, bytes);
    } catch (const std::exception& ex) {
      ++bad;
      std::printf("%-28s REJECTED    %s\n",
                  path.filename().string().c_str(), ex.what());
    }
  }
  std::printf("%zu artifact(s), %zu estimated resident byte(s), %d bad\n",
              files.size(), total_bytes, bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  spttn::Cli cli("spttn_cache");
  const std::string* dir =
      cli.add_string("dir", "plans", "plan cache directory");
  const bool* do_prewarm = cli.add_bool(
      "prewarm", false, "plan the paper suite and save it to --dir");
  const bool* do_check = cli.add_bool(
      "check", false, "re-run the plan verifier on every inspected artifact");
  const std::string* filter = cli.add_string(
      "kernel", "", "prewarm only suite kernels whose name contains this");
  const std::int64_t* seed =
      cli.add_int("seed", 42, "seed for the suite's random tensors");
  cli.parse(argc, argv);

  try {
    if (*do_prewarm) {
      return prewarm(*dir, *filter, static_cast<std::uint64_t>(*seed));
    }
    return inspect(*dir, *do_check);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "spttn_cache: %s\n", ex.what());
    return 1;
  }
}
