// spttn_lint: plan the paper kernel suite under a sweep of planner option
// sets and run the static plan verifier (with the executor cross-check) on
// every resulting plan. CI runs this so a planner or executor change that
// produces an unverifiable plan fails the build even if no unit test
// exercises that exact kernel/option combination.
//
//   spttn_lint                 # whole suite, all option sets
//   spttn_lint --kernel=mttkrp # suite entries whose name contains "mttkrp"
//   spttn_lint --verbose       # print each verified plan's loop nest
//
// Exit code: 0 when every plan verifies clean, 1 otherwise.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/kernel_suite.hpp"
#include "analysis/plan_verifier.hpp"
#include "exec/executor.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  spttn::Cli cli("spttn_lint");
  const std::string* filter =
      cli.add_string("kernel", "", "only suite kernels whose name contains this");
  const bool* verbose =
      cli.add_bool("verbose", false, "print each verified plan's loop nest");
  const bool* cross =
      cli.add_bool("cross_check", true,
                   "also cross-check against the compiled executor");
  const std::int64_t* seed =
      cli.add_int("seed", 42, "seed for the suite's random tensors");
  cli.parse(argc, argv);

  int planned = 0;
  int failed = 0;
  for (const spttn::SuiteKernel& sk : spttn::paper_kernel_suite()) {
    if (!filter->empty() && sk.name.find(*filter) == std::string::npos) {
      continue;
    }
    const auto inst = spttn::make_suite_instance(
        sk, static_cast<std::uint64_t>(*seed));
    // The option sets live in kernel_suite so the differential tests sweep
    // exactly what the linter sweeps.
    for (const spttn::LintOptionSet& set : spttn::lint_option_sets()) {
      ++planned;
      const std::string label = sk.name + " [" + set.name + "]";
      try {
        const spttn::Plan plan = spttn::make_plan(
            inst->bound.kernel, inst->bound.stats, set.options);
        const spttn::PlanVerifier verifier(inst->bound.kernel, set.options,
                                           &inst->bound.stats);
        spttn::VerifyReport report;
        if (*cross) {
          const spttn::FusedExecutor exec(inst->bound.kernel, plan);
          report = verifier.verify(plan, exec);
        } else {
          report = verifier.verify(plan);
        }
        if (report.ok()) {
          std::printf("ok    %-32s %d warning(s)\n", label.c_str(),
                      report.warnings());
          if (report.warnings() > 0 || *verbose) {
            std::printf("%s\n", report.to_string().c_str());
          }
          if (*verbose) {
            std::printf("%s\n", plan.describe(inst->bound.kernel).c_str());
          }
        } else {
          ++failed;
          std::printf("FAIL  %-32s\n%s\n", label.c_str(),
                      report.to_string().c_str());
          std::printf("%s\n", plan.describe(inst->bound.kernel).c_str());
        }
      } catch (const std::exception& e) {
        // make_plan itself verifies in Debug builds; a throw here is the
        // same regression the report path would have flagged.
        ++failed;
        std::printf("FAIL  %-32s\nplanning threw: %s\n", label.c_str(),
                    e.what());
      }
    }
  }
  std::printf("spttn_lint: %d plan(s) verified, %d failure(s)\n", planned,
              failed);
  return failed == 0 ? 0 : 1;
}
